// Package chart renders simple ASCII line charts, enough to draw the
// paper's Figure 1 (β_i trajectories near the threshold) in a terminal
// without any plotting dependency.
package chart

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name   string
	Values []float64 // y per integer x (x = index+1)
}

// Config controls the canvas.
type Config struct {
	Width  int // columns of the plot area (default 72)
	Height int // rows of the plot area (default 20)
	YLabel string
	XLabel string
}

// markers cycle across series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Render draws the series onto w. X is the value index (1-based,
// compressed to fit Width); Y spans [min, max] across all series. Each
// series uses its own marker; overlapping points show the later series.
func Render(w io.Writer, cfg Config, series ...Series) {
	if cfg.Width <= 0 {
		cfg.Width = 72
	}
	if cfg.Height <= 0 {
		cfg.Height = 20
	}
	maxLen := 0
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
		for _, v := range s.Values {
			if v < yMin {
				yMin = v
			}
			if v > yMax {
				yMax = v
			}
		}
	}
	if maxLen == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i, v := range s.Values {
			col := 0
			if maxLen > 1 {
				col = i * (cfg.Width - 1) / (maxLen - 1)
			}
			row := int((yMax - v) / (yMax - yMin) * float64(cfg.Height-1))
			if row < 0 {
				row = 0
			}
			if row >= cfg.Height {
				row = cfg.Height - 1
			}
			grid[row][col] = mark
		}
	}

	if cfg.YLabel != "" {
		fmt.Fprintf(w, "%s\n", cfg.YLabel)
	}
	for r, line := range grid {
		yVal := yMax - (yMax-yMin)*float64(r)/float64(cfg.Height-1)
		fmt.Fprintf(w, "%9.3g |%s\n", yVal, string(line))
	}
	fmt.Fprintf(w, "%9s +%s\n", "", strings.Repeat("-", cfg.Width))
	fmt.Fprintf(w, "%9s  1%s%d", "", strings.Repeat(" ", cfg.Width-2-len(fmt.Sprint(maxLen))), maxLen)
	if cfg.XLabel != "" {
		fmt.Fprintf(w, "  (%s)", cfg.XLabel)
	}
	fmt.Fprintln(w)
	for si, s := range series {
		fmt.Fprintf(w, "%9s  %c = %s\n", "", markers[si%len(markers)], s.Name)
	}
}
