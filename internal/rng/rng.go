// Package rng provides fast, seedable pseudo-random number generation for
// the simulation hot paths in this repository.
//
// The generator is xoshiro256**, seeded through SplitMix64 so that any
// 64-bit seed yields a well-mixed initial state. The package also provides
// the derived samplers the peeling experiments need: uniform integers
// without modulo bias (Lemire's method), floats in [0,1), Poisson variates,
// Fisher-Yates shuffles, and r-distinct-vertex tuples.
//
// Every experiment in this repository derives per-trial generators from a
// base seed via NewStream, so all reported numbers are reproducible.
package rng

import "math/bits"

// SplitMix64 advances the given state and returns the next value of the
// SplitMix64 sequence. It is used for seeding and for cheap one-off hashes.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a well-mixed hash of x. It is the finalizer of SplitMix64
// and passes standard avalanche tests; it is used to derive independent
// hash functions from (seed, index) pairs.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New or NewStream.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *RNG {
	var r RNG
	r.Seed(seed)
	return &r
}

// NewStream returns a generator for stream index idx derived from a base
// seed. Distinct (seed, idx) pairs give statistically independent streams,
// which the trial runners use for per-trial reproducibility.
func NewStream(seed, idx uint64) *RNG {
	return New(seed ^ Mix64(idx+0x632be59bd9b4e019))
}

// DeriveSeed draws one value from the generator for use as the base seed
// of a family of indexed substreams (NewStream(base, idx)). The parallel
// hypergraph generators use this to key edge-chunk streams by chunk
// index: the caller's generator advances by exactly one draw regardless
// of how much randomness the chunks consume, so the construction is
// reproducible for any worker count.
func (r *RNG) DeriveSeed() uint64 { return r.Uint64() }

// Seed resets the generator state from a single 64-bit seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	r.s0 = SplitMix64(&sm)
	r.s1 = SplitMix64(&sm)
	r.s2 = SplitMix64(&sm)
	r.s3 = SplitMix64(&sm)
	// xoshiro must not start at the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s3 = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Uint32 returns the next pseudo-random 32-bit value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Uint64n returns a uniform value in [0, n) without modulo bias using
// Lemire's multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n with n <= 0")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs uniformly at random in place.
func (r *RNG) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Shuffle32 permutes xs uniformly at random in place.
func (r *RNG) Shuffle32(xs []uint32) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// poissonChunk bounds the per-step mean of the product method so that
// exp(-mean) stays comfortably inside float64 range.
const poissonChunk = 30.0

// Poisson returns a Poisson(mean) variate using Knuth's product method,
// splitting large means into chunks via the additivity of the Poisson
// distribution (Poisson(a+b) = Poisson(a) + Poisson(b) for independent
// summands). Means in the peeling experiments are O(rc), i.e. small, so
// the chunked product method is both exact and fast. It panics on negative
// mean; mean 0 returns 0.
func (r *RNG) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson with negative mean")
	}
	total := 0
	for mean > poissonChunk {
		total += r.poissonSmall(poissonChunk)
		mean -= poissonChunk
	}
	return total + r.poissonSmall(mean)
}

func (r *RNG) poissonSmall(mean float64) int {
	if mean == 0 {
		return 0
	}
	// exp(-mean) with mean <= poissonChunk is >= 9.4e-14, safely normal.
	limit := expNeg(mean)
	k := 0
	prod := r.Float64()
	for prod > limit {
		k++
		prod *= r.Float64()
	}
	return k
}

// expNeg computes e^-x for 0 <= x <= poissonChunk via a short range
// reduction (keeps internal/rng free of math imports is not a goal; this
// simply documents the valid domain).
func expNeg(x float64) float64 {
	// math.Exp is fine here; wrapped for the domain comment above.
	return mathExp(-x)
}

// SampleDistinct fills dst with len(dst) distinct uniform values in [0, n).
// It uses rejection against the partially filled prefix, which is the right
// tool for the tiny tuple sizes (r <= 8) used for hypergraph edges. It
// panics if len(dst) > n.
func (r *RNG) SampleDistinct(dst []uint32, n uint32) {
	if uint32(len(dst)) > n {
		panic("rng: SampleDistinct tuple larger than universe")
	}
	for i := range dst {
	retry:
		v := uint32(r.Uint64n(uint64(n)))
		for j := 0; j < i; j++ {
			if dst[j] == v {
				goto retry
			}
		}
		dst[i] = v
	}
}

// Binomial returns a Binomial(n, p) variate. For the small n·p regime used
// in tests it uses direct Bernoulli summation when n is small and a
// Poisson-inversion-free waiting-time method otherwise (geometric skips),
// which runs in O(np + 1) expected time.
func (r *RNG) Binomial(n int, p float64) int {
	switch {
	case p <= 0 || n <= 0:
		return 0
	case p >= 1:
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	// Waiting-time method: skip lengths between successes are geometric.
	lnq := mathLog1p(-p)
	k := 0
	i := 0
	for {
		skip := int(mathFloor(mathLog(1-r.Float64()) / lnq))
		i += skip + 1
		if i > n {
			return k
		}
		k++
	}
}
