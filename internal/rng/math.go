package rng

import "math"

// Thin indirections keep the sampler code readable while making the
// dependence on the math package explicit in one place.

func mathExp(x float64) float64   { return math.Exp(x) }
func mathLog(x float64) float64   { return math.Log(x) }
func mathLog1p(x float64) float64 { return math.Log1p(x) }
func mathFloor(x float64) float64 { return math.Floor(x) }
