package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for the SplitMix64 sequence from seed 0
	// (cross-checked against the canonical C implementation).
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Errorf("SplitMix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	const trials = 200
	base := uint64(0x12345678abcdef)
	total := 0
	for i := 0; i < trials; i++ {
		x := base + uint64(i)*0x9e3779b97f4a7c15
		for bit := 0; bit < 64; bit += 7 {
			d := Mix64(x) ^ Mix64(x^(1<<bit))
			total += popcount(d)
		}
	}
	per := float64(total) / float64(trials*10)
	if per < 24 || per > 40 {
		t.Errorf("Mix64 avalanche: mean flipped bits %.2f, want near 32", per)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestNewZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) != 100 {
		t.Errorf("seed-0 generator produced %d distinct values out of 100", len(seen))
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := NewStream(42, 0)
	b := NewStream(42, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("streams 0 and 1 collided on %d of 64 outputs", same)
	}
}

func TestReproducibility(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want about %.0f", v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %.4f, want 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(6)
	xs := []int{1, 2, 2, 3, 5, 8, 13, 21}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(xs)
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed multiset sum: %d != %d", got, sum)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(8)
	for _, mean := range []float64{0.3, 1.0, 2.8, 3.4, 10, 75} {
		const trials = 60000
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sumsq += v * v
		}
		m := sum / trials
		variance := sumsq/trials - m*m
		se := math.Sqrt(mean / trials)
		if math.Abs(m-mean) > 6*se {
			t.Errorf("Poisson(%v) sample mean %.4f, want %.4f +- %.4f", mean, m, mean, 6*se)
		}
		if math.Abs(variance-mean) > 0.15*mean+0.1 {
			t.Errorf("Poisson(%v) sample variance %.4f, want about %.4f", mean, variance, mean)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if v := r.Poisson(0); v != 0 {
			t.Fatalf("Poisson(0) = %d", v)
		}
	}
}

func TestPoissonNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Poisson(-1) did not panic")
		}
	}()
	New(1).Poisson(-1)
}

func TestSampleDistinct(t *testing.T) {
	r := New(10)
	dst := make([]uint32, 4)
	for trial := 0; trial < 1000; trial++ {
		r.SampleDistinct(dst, 20)
		for i := 0; i < len(dst); i++ {
			if dst[i] >= 20 {
				t.Fatalf("sample %d out of range", dst[i])
			}
			for j := 0; j < i; j++ {
				if dst[i] == dst[j] {
					t.Fatalf("duplicate sample %d at positions %d,%d", dst[i], i, j)
				}
			}
		}
	}
}

func TestSampleDistinctFullUniverse(t *testing.T) {
	r := New(11)
	dst := make([]uint32, 5)
	r.SampleDistinct(dst, 5)
	var mask uint32
	for _, v := range dst {
		mask |= 1 << v
	}
	if mask != 0x1f {
		t.Errorf("full-universe sample missed values: mask %#x", mask)
	}
}

func TestSampleDistinctPanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized SampleDistinct did not panic")
		}
	}()
	New(1).SampleDistinct(make([]uint32, 3), 2)
}

func TestBinomialMoments(t *testing.T) {
	r := New(12)
	cases := []struct {
		n int
		p float64
	}{{50, 0.3}, {1000, 0.01}, {100000, 0.0002}, {10, 1}, {10, 0}}
	for _, c := range cases {
		const trials = 20000
		sum := 0.0
		for i := 0; i < trials; i++ {
			v := r.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", c.n, c.p, v)
			}
			sum += float64(v)
		}
		mean := sum / trials
		want := float64(c.n) * c.p
		tol := 6*math.Sqrt(want*(1-c.p)/trials) + 1e-9
		if math.Abs(mean-want) > tol {
			t.Errorf("Binomial(%d,%v) mean %.3f, want %.3f +- %.3f", c.n, c.p, mean, want, tol)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkPoissonMean3(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Poisson(2.8)
	}
	_ = sink
}

func BenchmarkSampleDistinct4(b *testing.B) {
	r := New(1)
	dst := make([]uint32, 4)
	for i := 0; i < b.N; i++ {
		r.SampleDistinct(dst, 1<<20)
	}
}
