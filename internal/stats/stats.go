// Package stats provides the small statistical toolkit the experiment
// harness uses: summary statistics, a reproducible multi-trial runner,
// and least-squares line fitting (for verifying the log n / log log n
// round-growth laws of Theorems 1 and 3).
package stats

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// Summary holds the usual scalar statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary; it returns the zero value for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Std / math.Sqrt(float64(s.N))
}

// Trials runs fn(trial, gen) for trials independent trials with
// per-trial generators derived from seed, returning the collected values.
// Results are reproducible: trial i always receives stream (seed, i).
func Trials(trials int, seed uint64, fn func(trial int, gen *rng.RNG) float64) []float64 {
	out := make([]float64, trials)
	for i := 0; i < trials; i++ {
		out[i] = fn(i, rng.NewStream(seed, uint64(i)))
	}
	return out
}

// LinearFit returns the least-squares slope and intercept of y on x. It
// panics if the lengths differ and returns a zero slope for fewer than
// two points.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		if len(x) == 1 {
			return 0, y[0]
		}
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// Correlation returns the Pearson correlation coefficient of x and y
// (0 for degenerate inputs).
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	sx := Summarize(x)
	sy := Summarize(y)
	if sx.Std == 0 || sy.Std == 0 {
		return 0
	}
	cov := 0.0
	for i := range x {
		cov += (x[i] - sx.Mean) * (y[i] - sy.Mean)
	}
	cov /= float64(len(x) - 1)
	return cov / (sx.Std * sy.Std)
}
