package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Errorf("Median = %v, want 2.5", s.Median)
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Errorf("singleton summary %+v", s)
	}
}

func TestStdErr(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	want := s.Std / 3
	if math.Abs(s.StdErr()-want) > 1e-12 {
		t.Errorf("StdErr = %v, want %v", s.StdErr(), want)
	}
}

func TestTrialsReproducible(t *testing.T) {
	run := func() []float64 {
		return Trials(10, 42, func(trial int, gen *rng.RNG) float64 {
			return gen.Float64() + float64(trial)
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d not reproducible", i)
		}
	}
	// Different trials see different streams.
	if a[0] == a[1]-1 {
		t.Error("adjacent trials appear to share a stream")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-3) > 1e-12 {
		t.Errorf("fit = (%v, %v), want (2, 3)", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if s, i := LinearFit(nil, nil); s != 0 || i != 0 {
		t.Error("empty fit nonzero")
	}
	if s, i := LinearFit([]float64{2}, []float64{9}); s != 0 || i != 9 {
		t.Errorf("singleton fit (%v, %v)", s, i)
	}
	// Constant x: slope undefined, return mean intercept.
	s, i := LinearFit([]float64{1, 1, 1}, []float64{2, 4, 6})
	if s != 0 || math.Abs(i-4) > 1e-12 {
		t.Errorf("constant-x fit (%v, %v)", s, i)
	}
}

func TestLinearFitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if c := Correlation(x, x); math.Abs(c-1) > 1e-12 {
		t.Errorf("self correlation %v", c)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if c := Correlation(x, neg); math.Abs(c+1) > 1e-12 {
		t.Errorf("anti correlation %v", c)
	}
	if c := Correlation(x, []float64{1, 1, 1, 1, 1}); c != 0 {
		t.Errorf("degenerate correlation %v", c)
	}
}

func TestSummarizeQuickInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip pathological inputs: NaN/Inf, and magnitudes where the
			// running sum itself overflows float64.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
