//go:build faultinject

package repro

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/layout"
)

// Chaos scenario: a rebuild-while-serve loop under an injected worker
// panic. The build job must fail with ErrJobPanicked, lookups against
// the serving table must stay uninterrupted and correct throughout, and
// after disarming the same Runtime must rebuild and swap cleanly.
// Run with -race -tags=faultinject.
func TestChaosRebuildWhileServeSurvivesWorkerPanic(t *testing.T) {
	defer faultinject.Reset()
	rt := NewRuntime(RuntimeOptions{Workers: 4, MaxJobs: 4})
	defer rt.Shutdown(context.Background())
	ctx := context.Background()
	tbl := NewStaticTable()

	keys := testRuntimeKeys(8000, 21)
	values := make([]uint64, len(keys))
	for i, k := range keys {
		values[i] = k ^ 0xabcd
	}
	sm, err := rt.BuildStaticMap(ctx, keys, values, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapImage(ctx, tbl, sm.Bytes(), nil); err != nil {
		t.Fatal(err)
	}

	// Serve continuously while the chaos plays out.
	var stop atomic.Bool
	var lookupErrs atomic.Int64
	var served sync.WaitGroup
	for g := 0; g < 2; g++ {
		served.Add(1)
		go func(g int) {
			defer served.Done()
			for i := 0; !stop.Load(); i++ {
				k := keys[(i*31+g)%len(keys)]
				if v, ok := tbl.Lookup(k); !ok || v != k^0xabcd {
					lookupErrs.Add(1)
					return
				}
			}
		}(g)
	}

	// Poison a chunk deep inside the rebuild's peel.
	faultinject.Arm(faultinject.PoolChunk, faultinject.PanicAt(5, "chaos: worker dies mid-peel"))
	_, err = rt.BuildStaticMap(ctx, keys, values, 2)
	if !errors.Is(err, ErrJobPanicked) {
		t.Fatalf("poisoned rebuild = %v, want ErrJobPanicked", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value() != "chaos: worker dies mid-peel" {
		t.Fatalf("panic payload lost: %v", err)
	}
	faultinject.Disarm(faultinject.PoolChunk)

	// Same Runtime, healthy rebuild and swap.
	sm2, err := rt.BuildStaticMap(ctx, keys, values, 3)
	if err != nil {
		t.Fatalf("rebuild after chaos: %v", err)
	}
	gen, err := rt.SwapImage(ctx, tbl, sm2.Bytes(), nil)
	if err != nil || gen != 2 {
		t.Fatalf("swap after chaos = gen %d, %v", gen, err)
	}

	stop.Store(true)
	served.Wait()
	if n := lookupErrs.Load(); n != 0 {
		t.Errorf("%d serving lookups failed during chaos", n)
	}
	if got := rt.Stats().JobsPanicked; got != 1 {
		t.Errorf("JobsPanicked = %d, want 1", got)
	}
}

// Chaos scenario: the swap path hands the table a corrupted image. The
// quarantine must reject it, count it, and keep the previous generation
// serving.
func TestChaosSwapCorruptionIsQuarantined(t *testing.T) {
	defer faultinject.Reset()
	rt := NewRuntime(RuntimeOptions{Workers: 2})
	defer rt.Shutdown(context.Background())
	ctx := context.Background()
	tbl := NewStaticTable()

	keys := testRuntimeKeys(4000, 5)
	f, err := rt.BuildMPHF(ctx, keys, 9)
	if err != nil {
		t.Fatal(err)
	}
	img := append([]byte(nil), f.Bytes()...)
	if _, err := rt.SwapImage(ctx, tbl, img, nil); err != nil {
		t.Fatal(err)
	}

	// The failpoint corrupts the candidate bytes in flight — exactly a
	// torn read of the image file.
	faultinject.Arm(faultinject.ServingSwap, func(hit int64, arg any) error {
		data := arg.([]byte)
		data[len(data)/3] ^= 0x80
		return nil
	})
	bad := append([]byte(nil), f.Bytes()...)
	if _, err := rt.SwapImage(ctx, tbl, bad, nil); !errors.Is(err, layout.ErrBadImage) {
		t.Fatalf("corrupted swap = %v, want ErrBadImage", err)
	}
	faultinject.Disarm(faultinject.ServingSwap)

	count, last := tbl.SwapRejections()
	if count != 1 || last == nil {
		t.Errorf("SwapRejections = (%d, %v), want (1, non-nil)", count, last)
	}
	if tbl.Generation() != 1 {
		t.Errorf("generation = %d, want 1 (previous image must keep serving)", tbl.Generation())
	}
	for _, k := range keys[:64] {
		if _, ok := tbl.Lookup(k); !ok {
			t.Fatal("previous generation stopped serving after a quarantined swap")
		}
	}
}

// Chaos scenario: reconciliation decode failures drive the policy's
// headroom escalation until the diff decodes.
func TestChaosReconcileHeadroomEscalation(t *testing.T) {
	defer faultinject.Reset()
	rt := NewRuntime(RuntimeOptions{
		Workers: 2,
		Policy:  Policy{ReconcileRetries: 3, HeadroomStep: 0.5},
	})
	defer rt.Shutdown(context.Background())
	ctx := context.Background()

	keys := testRuntimeKeys(2100, 13)
	local, remote := keys[:2000], keys[100:2100]

	faultinject.Arm(faultinject.ReconcileDecode, faultinject.FailFirst(2, errors.New("forced incomplete")))
	defer faultinject.Disarm(faultinject.ReconcileDecode)

	onlyLocal, onlyRemote, wireBytes, err := rt.Reconcile(ctx, local, remote, 7, 2.0)
	if err != nil {
		t.Fatalf("Reconcile under injected decode failures: %v", err)
	}
	if len(onlyLocal) != 100 || len(onlyRemote) != 100 {
		t.Errorf("diff = (%d, %d), want (100, 100)", len(onlyLocal), len(onlyRemote))
	}
	if got := faultinject.Hits(faultinject.ReconcileDecode); got != 3 {
		t.Errorf("decode attempts = %d, want 3 (two forced failures, one success)", got)
	}
	// Retries accumulate wire cost; the total must cover all attempts.
	if wireBytes <= 0 {
		t.Errorf("wireBytes = %d across retried attempts", wireBytes)
	}
}

// Chaos scenario: every attempt of the first whole MPHF build is forced
// to fail, exhausting its internal attempt budget; the policy's single
// retry with an escalated seed succeeds on its first attempt.
func TestChaosBuildRetryEscalatesSeed(t *testing.T) {
	defer faultinject.Reset()
	rt := NewRuntime(RuntimeOptions{Workers: 2, Policy: Policy{BuildRetries: 1}})
	defer rt.Shutdown(context.Background())
	ctx := context.Background()

	keys := testRuntimeKeys(3000, 17)
	faultinject.Arm(faultinject.MPHFAttempt, faultinject.FailFirst(10, errors.New("forced 2-core")))
	defer faultinject.Disarm(faultinject.MPHFAttempt)

	f, err := rt.BuildMPHF(ctx, keys, 99)
	if err != nil {
		t.Fatalf("BuildMPHF with retry policy: %v", err)
	}
	if got := faultinject.Hits(faultinject.MPHFAttempt); got != 11 {
		t.Errorf("build attempts = %d, want 11 (10 forced failures + 1 success)", got)
	}
	seen := make([]bool, len(keys))
	for _, k := range keys {
		i := f.Lookup(k)
		if i < 0 || i >= len(keys) || seen[i] {
			t.Fatal("escalated-seed build is not a perfect function")
		}
		seen[i] = true
	}

	// Without the policy the same injection fails the build outright.
	faultinject.Arm(faultinject.MPHFAttempt, faultinject.FailFirst(10, errors.New("forced 2-core")))
	if _, err := rt.WithPolicy(Policy{}).BuildMPHF(ctx, keys, 99); !errors.Is(err, ErrMPHFBuildFailed) {
		t.Fatalf("no-retry build = %v, want ErrMPHFBuildFailed", err)
	}
}

// Chaos scenario: a staticmap build retry driven by the bloomier
// failpoint, through the same policy knob as MPHF.
func TestChaosStaticMapBuildRetry(t *testing.T) {
	defer faultinject.Reset()
	rt := NewRuntime(RuntimeOptions{Workers: 2, Policy: Policy{BuildRetries: 2}})
	defer rt.Shutdown(context.Background())
	ctx := context.Background()

	keys := testRuntimeKeys(2000, 29)
	values := make([]uint64, len(keys))
	for i := range keys {
		values[i] = uint64(i)
	}
	faultinject.Arm(faultinject.BloomierAttempt, faultinject.FailFirst(10, errors.New("forced failure")))
	defer faultinject.Disarm(faultinject.BloomierAttempt)

	sm, err := rt.BuildStaticMap(ctx, keys, values, 3)
	if err != nil {
		t.Fatalf("BuildStaticMap with retry policy: %v", err)
	}
	for i, k := range keys[:128] {
		if v := sm.Lookup(k); v != uint64(i) {
			t.Fatal("retried static map lookup wrong")
		}
	}
}
