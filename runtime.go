package repro

import (
	"context"
	"sync"

	"repro/internal/bloomier"
	"repro/internal/core"
	"repro/internal/iblt"
	"repro/internal/mphf"
	"repro/internal/parallel"
)

// ErrRuntimeClosed is returned for work submitted to a Runtime after
// Shutdown began, and by the second and later Shutdown calls. It wraps
// the pool-level sentinel, so errors.Is works against either.
var ErrRuntimeClosed = parallel.ErrClosed

// RuntimeOptions configure NewRuntime.
type RuntimeOptions struct {
	// Workers is the worker-pool size all jobs share; <= 0 selects
	// GOMAXPROCS.
	Workers int

	// MaxJobs bounds how many jobs run simultaneously; admission of the
	// next job blocks (respecting its context) until a slot frees.
	// <= 0 means unbounded. A bound caps the per-job buffer memory and
	// goroutine count of a server admitting unbounded requests.
	MaxJobs int
}

// RuntimeStats is a snapshot of the Runtime's backpressure counters; see
// parallel.Stats for field semantics.
type RuntimeStats = parallel.Stats

// Runtime is the serving handle for the peeling runtime: one persistent
// worker pool, shared by any number of concurrent jobs, behind a
// context-first API. Every method admits the request as a job (subject
// to MaxJobs), runs it with all parallelism pinned to the shared pool,
// and honors ctx cancellation at the round/subround barriers of the
// underlying peeling process — the paper's O(log log n) round structure
// is what makes cancellation cheap: each job already crosses a barrier
// many times, so a single check per barrier aborts a canceled job within
// one round of extra work.
//
// A Runtime is safe for concurrent use. Shut it down with Shutdown,
// which stops admission, drains in-flight jobs, and releases the
// workers. Jobs whose context is canceled return ctx.Err() and are
// counted in Stats().JobsCanceled.
//
//	rt := repro.NewRuntime(repro.RuntimeOptions{MaxJobs: 32})
//	defer rt.Shutdown(context.Background())
//	res, err := rt.Decode(ctx, table)
type Runtime struct {
	pool *parallel.Pool
	sem  chan struct{}

	mu     sync.Mutex
	closed bool
	active int           // admitted jobs currently running
	idle   chan struct{} // created by Shutdown when it must wait; closed at active == 0
}

// NewRuntime starts a Runtime with its own worker pool.
func NewRuntime(opts RuntimeOptions) *Runtime {
	rt := &Runtime{pool: parallel.NewPool(opts.Workers)}
	if opts.MaxJobs > 0 {
		rt.sem = make(chan struct{}, opts.MaxJobs)
	}
	return rt
}

var (
	defaultRuntime     *Runtime
	defaultRuntimeOnce sync.Once
)

// DefaultRuntime returns the lazily created process-wide Runtime backing
// the package's one-shot convenience functions (PeelParallel, BuildMPHF,
// ReconcileSets, ...). It runs on the process-wide default worker pool
// (shared with parallel.Default) with unbounded admission. Servers
// should create their own Runtime to pick Workers/MaxJobs and to own
// shutdown; shutting down the default Runtime degrades the package-level
// helpers to inline serial execution for the rest of the process.
func DefaultRuntime() *Runtime {
	defaultRuntimeOnce.Do(func() {
		defaultRuntime = &Runtime{pool: parallel.Default()}
	})
	return defaultRuntime
}

// Workers returns the size of the Runtime's worker pool.
func (rt *Runtime) Workers() int { return rt.pool.Workers() }

// Pool returns the underlying shared worker pool, for interoperating
// with the deprecated ...WithPool entry points during migration.
func (rt *Runtime) Pool() *WorkerPool { return rt.pool }

// Stats returns a snapshot of the Runtime's backpressure counters:
// queue depth and helper occupancy of the shared pool, and the
// admitted/rejected/canceled job totals. Serving layers use it to size
// MaxJobs and detect saturation.
func (rt *Runtime) Stats() RuntimeStats { return rt.pool.Stats() }

// admit reserves a job slot, blocking while the MaxJobs bound is reached
// (admission respects ctx) and failing with ErrRuntimeClosed once
// Shutdown has begun.
func (rt *Runtime) admit(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if rt.sem != nil {
		select {
		case rt.sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		if rt.sem != nil {
			<-rt.sem
		}
		rt.pool.NoteRejected()
		return ErrRuntimeClosed
	}
	rt.active++
	rt.mu.Unlock()
	return nil
}

// finish releases the job slot reserved by admit, completing a pending
// shutdown when the last job leaves.
func (rt *Runtime) finish() {
	if rt.sem != nil {
		<-rt.sem
	}
	rt.mu.Lock()
	rt.active--
	if rt.active == 0 && rt.idle != nil {
		close(rt.idle)
		rt.idle = nil
	}
	rt.mu.Unlock()
}

// runJob executes job synchronously on the calling goroutine as an
// admitted job of the Runtime and its pool.
func (rt *Runtime) runJob(ctx context.Context, job func(ctx context.Context, pool *parallel.Pool) error) error {
	if err := rt.admit(ctx); err != nil {
		return err
	}
	defer rt.finish()
	return rt.execute(ctx, job)
}

// execute runs an already admitted job on the current goroutine,
// registering it with the pool (for drain accounting) and recording
// cancellations in the pool stats.
func (rt *Runtime) execute(ctx context.Context, job func(ctx context.Context, pool *parallel.Pool) error) error {
	exit, err := rt.pool.Enter()
	if err != nil {
		return err
	}
	defer exit()
	err = job(ctx, rt.pool)
	if parallel.IsCancellation(err) {
		rt.pool.NoteCanceled()
	}
	return err
}

// Go submits an arbitrary job to run asynchronously on the shared pool —
// the escape hatch subsuming the deprecated JobGroup for workloads the
// typed methods don't cover. The job receives ctx and the shared pool
// and should pass them to the ctx-aware entry points (or check ctx at
// its own barriers). Go blocks only for admission (MaxJobs), respecting
// ctx; it returns a wait function that blocks until the job finishes and
// reports its error. Discarding the wait function is allowed — the job
// still runs and Shutdown still drains it.
//
//	wait, err := rt.Go(ctx, func(ctx context.Context, p *repro.WorkerPool) error {
//	    res, err := table.DecodeParallelFrontierCtx(ctx, p)
//	    ...
//	})
func (rt *Runtime) Go(ctx context.Context, job func(ctx context.Context, pool *WorkerPool) error) (wait func() error, err error) {
	if err := rt.admit(ctx); err != nil {
		return nil, err
	}
	errc := make(chan error, 1)
	go func() {
		defer rt.finish()
		errc <- rt.execute(ctx, job)
	}()
	var once sync.Once
	var res error
	return func() error {
		once.Do(func() { res = <-errc })
		return res
	}, nil
}

// Shutdown gracefully drains the Runtime: admission stops immediately
// (subsequent calls return ErrRuntimeClosed), in-flight jobs run to
// completion, and the worker pool is then released. It returns nil once
// everything has drained. If ctx expires first it returns ctx.Err();
// the Runtime keeps draining in the background and the workers are
// released when the last job finishes (Go cannot force-kill goroutines —
// cancel the jobs' own contexts to make the drain converge faster).
// Calling Shutdown again returns ErrRuntimeClosed.
func (rt *Runtime) Shutdown(ctx context.Context) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return ErrRuntimeClosed
	}
	rt.closed = true
	if rt.active == 0 {
		// Already drained: complete synchronously — even an expired ctx
		// reports success for a shutdown that has nothing left to wait
		// for (the pool drain below is likewise immediate).
		rt.mu.Unlock()
		return rt.pool.Shutdown(ctx)
	}
	idle := make(chan struct{})
	rt.idle = idle
	rt.mu.Unlock()

	select {
	case <-idle:
		return rt.pool.Shutdown(ctx)
	case <-ctx.Done():
		go func() {
			<-idle
			_ = rt.pool.Shutdown(context.Background())
		}()
		return ctx.Err()
	}
}

// Peel runs the round-synchronous parallel peeling process on the
// shared pool. opts selects scan policy, round cap, and grain; its Pool
// and Workers fields are ignored (the Runtime's pool always wins).
// Cancellation is checked at every round barrier: a canceled peel stops
// within one round of extra work and returns (nil, ctx.Err()).
func (rt *Runtime) Peel(ctx context.Context, g *Hypergraph, k int, opts PeelOptions) (*PeelResult, error) {
	var res *PeelResult
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		opts.Workers = 0
		opts.Pool = pool
		var err error
		res, err = core.ParallelCtx(ctx, g, k, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// PeelOrdered runs the ordered round-synchronous peeling process on the
// shared pool: the same rounds and k-core as Peel, plus the round-major
// peel order and the minimum-endpoint edge orientation the data-
// structure constructions consume. The result is bit-identical at every
// worker count (see core.OrderedResult). Cancellation is checked at
// every round barrier.
func (rt *Runtime) PeelOrdered(ctx context.Context, g *Hypergraph, k int, opts PeelOptions) (*OrderedPeelResult, error) {
	var res *OrderedPeelResult
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		opts.Workers = 0
		opts.Pool = pool
		var err error
		res, err = core.ParallelOrderCtx(ctx, g, k, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// PeelSubtables runs the Appendix B subround peeling process on the
// shared pool; g must be partitioned. Cancellation is checked at every
// subround barrier.
func (rt *Runtime) PeelSubtables(ctx context.Context, g *Hypergraph, k int, opts PeelOptions) (*PeelResult, error) {
	var res *PeelResult
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		opts.Workers = 0
		opts.Pool = pool
		var err error
		res, err = core.SubtablesCtx(ctx, g, k, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Decode peels an IBLT with the work-efficient parallel frontier
// decoder on the shared pool. Decoding is destructive — Clone first if
// the table is still needed — and a canceled decode leaves the table
// partially decoded (discard it). Cancellation is checked at every
// subround barrier.
func (rt *Runtime) Decode(ctx context.Context, t *IBLT) (*IBLTParallelResult, error) {
	var res *IBLTParallelResult
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		var err error
		res, err = t.DecodeParallelFrontierCtx(ctx, pool)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// BuildMPHF builds a minimal perfect hash function over distinct keys
// (γ = 1.23, up to 10 seed attempts) with every phase on the shared
// pool: hashing, index build, the ordered parallel peel, and the
// round-parallel g-value assignment. The resulting function is
// identical at every Runtime size (the ordered peel is bit-stable
// across worker counts). Cancellation is checked at every round barrier
// of every attempt, so a canceled build aborts within one peel round of
// extra work — not one phase.
func (rt *Runtime) BuildMPHF(ctx context.Context, keys []uint64, seed uint64) (*MPHF, error) {
	var f *MPHF
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		var err error
		f, err = mphf.BuildCtx(ctx, keys, mphf.DefaultGamma, seed, 10, pool)
		return err
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// BuildStaticMap builds an immutable key → value map (Bloomier filter)
// with every phase — hashing, index build, the ordered parallel peel,
// and round-parallel back-substitution — on the shared pool. The
// resulting map is byte-identical at every Runtime size (the ordered
// peel is bit-stable across worker counts), so a map built here seals
// the same flat image an offline builder box would produce.
// Cancellation is checked at every round barrier of every attempt.
func (rt *Runtime) BuildStaticMap(ctx context.Context, keys, values []uint64, seed uint64) (*StaticMap, error) {
	var f *StaticMap
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		var err error
		f, err = bloomier.BuildCtx(ctx, keys, values, bloomier.DefaultGamma, seed, 10, pool)
		return err
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Reconcile runs the full two-message IBLT set-reconciliation protocol
// between two key sets on the shared pool: parallel strata-estimator
// inserts, bulk table inserts, and the frontier decode. headroom >= 1.25
// oversizes the difference table for safety. The returned difference
// sides are sorted (deterministic at every pool size). Cancellation is
// checked between protocol phases and at the decode's subround barriers.
func (rt *Runtime) Reconcile(ctx context.Context, local, remote []uint64, seed uint64, headroom float64) (onlyLocal, onlyRemote []uint64, wireBytes int, err error) {
	err = rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		var jerr error
		onlyLocal, onlyRemote, wireBytes, jerr = iblt.ReconcileCtx(ctx, local, remote, seed, headroom, pool)
		return jerr
	})
	if err != nil {
		return nil, nil, wireBytes, err
	}
	return onlyLocal, onlyRemote, wireBytes, nil
}

// EncodeErasure computes the check block of a Biff-style erasure code
// for data, with the per-symbol cell updates fanned out over the shared
// pool (cell-for-cell identical to the serial encoder).
func (rt *Runtime) EncodeErasure(ctx context.Context, code *ErasureCode, data []uint64) ([]ErasureCell, error) {
	var checks []ErasureCell
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		var err error
		checks, err = code.EncodeCtx(ctx, data, pool)
		return err
	})
	if err != nil {
		return nil, err
	}
	return checks, nil
}

// DecodeErasure reconstructs the missing entries of data in place
// (present[i] reports whether data[i] survived) with both phases on the
// shared pool: parallel subtraction of received symbols, then the
// round-synchronous parallel peel of the missing set. Cancellation is
// checked inside subtraction and at every peeling round barrier; a
// canceled decode leaves data/present partially updated (treat the block
// as abandoned).
func (rt *Runtime) DecodeErasure(ctx context.Context, code *ErasureCode, data []uint64, present []bool, checks []ErasureCell) error {
	return rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		return code.DecodeCtx(ctx, data, present, checks, pool)
	})
}
