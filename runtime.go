package repro

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bloomier"
	"repro/internal/core"
	"repro/internal/iblt"
	"repro/internal/mphf"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// ErrRuntimeClosed is returned for work submitted to a Runtime after
// Shutdown began, and by the second and later Shutdown calls. It wraps
// the pool-level sentinel, so errors.Is works against either.
var ErrRuntimeClosed = parallel.ErrClosed

// ErrOverloaded is returned by TryGo when the Runtime's MaxJobs bound is
// saturated: the job was shed — turned away immediately, never queued and
// never run — and counted in Stats().JobsShed. Shedding is the serving
// layer's defense against unbounded queueing; a shed job is always safe
// to retry after a backoff, because it never started.
var ErrOverloaded = errors.New("repro: runtime overloaded, job shed")

// ErrJobPanicked is the sentinel matched (errors.Is) by jobs that died
// to a panic recovered inside the Runtime: the pool recovers panics at
// chunk boundaries (completing the round barrier so sibling workers and
// concurrent jobs never hang) and the Runtime recovers them at the job
// boundary, so a poisoned job surfaces as this error — carrying the
// panic value and stack via *PanicError — instead of killing the
// process. The pool stays healthy; subsequent jobs run normally.
var ErrJobPanicked = parallel.ErrJobPanicked

// PanicError is the concrete error behind ErrJobPanicked: the recovered
// panic value plus the panicking goroutine's stack.
type PanicError = parallel.PanicError

// ErrReconcileIncomplete is the sentinel matched by Reconcile errors
// when the difference table failed to decode completely — the
// probabilistic failure mode headroom escalation (Policy) retries.
var ErrReconcileIncomplete = iblt.ErrDecodeIncomplete

// Policy is the Runtime's failure-handling policy: what happens when a
// job runs long, when a probabilistic build lands above the 2-core
// threshold, or when a reconciliation table fails to decode. The zero
// Policy does nothing extra (no timeout, no retries) — the pre-policy
// behavior. Policies are applied per Runtime handle (RuntimeOptions)
// and overridden per call site with WithPolicy.
type Policy struct {
	// JobTimeout is a default per-job deadline: jobs whose caller ctx
	// carries no earlier deadline are canceled (at their next round
	// barrier) after this long, returning context.DeadlineExceeded.
	// <= 0 means no default deadline. A caller deadline that is
	// earlier always wins (the timeout never extends it).
	JobTimeout time.Duration

	// BuildRetries is how many extra whole-build attempts BuildMPHF /
	// BuildStaticMap (and the Rebuild* wrappers) make after a build
	// fails with a non-empty 2-core (ErrMPHFBuildFailed /
	// ErrStaticMapBuildFailed). Each retry escalates to a jittered
	// seed — Mix64 of the original seed and the retry index — so the
	// retry's whole seed ladder is decorrelated from the failed one
	// rather than walking the same sequence again. Non-probabilistic
	// failures (duplicate keys, cancellation, panics) are never
	// retried. 0 means fail on the first exhausted ladder.
	BuildRetries int

	// ReconcileRetries is how many extra attempts Reconcile makes when
	// the difference table fails to decode (ErrReconcileIncomplete) —
	// graceful degradation for an undersized estimate instead of a
	// terminal error. Each retry escalates the headroom by
	// HeadroomStep (capped at MaxHeadroom), oversizing the next
	// difference table. 0 means fail on the first incomplete decode.
	ReconcileRetries int

	// HeadroomStep is the headroom added per Reconcile retry;
	// <= 0 selects 0.25.
	HeadroomStep float64

	// MaxHeadroom caps the escalated headroom; <= 0 selects 4.0.
	MaxHeadroom float64
}

func (p Policy) headroomStep() float64 {
	if p.HeadroomStep > 0 {
		return p.HeadroomStep
	}
	return 0.25
}

func (p Policy) maxHeadroom() float64 {
	if p.MaxHeadroom > 0 {
		return p.MaxHeadroom
	}
	return 4.0
}

// applyTimeout derives the job ctx under the policy's default deadline.
// The returned cancel must always be called.
func (p Policy) applyTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.JobTimeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		// The caller set an explicit deadline; respect it as-is (even
		// if later than JobTimeout — an explicit deadline is a
		// stronger statement than a handle-wide default).
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, p.JobTimeout)
}

// ReconcileMeta reports how a policy-driven reconciliation converged:
// how many attempts it took (1 when the first decode completed), the
// wire-byte cost accumulated across every attempt — each retry re-ships
// a strata estimator and a larger difference table, exactly as a
// networked deployment would — and the headroom of the final attempt.
// Serving layers surface it as reply metadata so clients can observe
// escalation.
type ReconcileMeta struct {
	Attempts      int
	WireBytes     int
	FinalHeadroom float64
}

// Reconcile runs the policy's headroom-escalating reconciliation loop on
// an explicit pool, without Runtime admission — the building block for
// callers that already hold an admitted job slot (a Runtime.Go / TryGo
// job, e.g. the wire server in internal/server). Runtime.Reconcile is
// this plus admission. The returned metadata carries the attempt count
// and the accumulated wire bytes; on error the metadata still reflects
// the attempts made. Deadlines are the caller's concern (the admission
// wrappers apply Policy.JobTimeout).
func (p Policy) Reconcile(ctx context.Context, local, remote []uint64, seed uint64, headroom float64, pool *parallel.Pool) (onlyLocal, onlyRemote []uint64, meta ReconcileMeta, err error) {
	h := headroom
	for attempt := 0; ; attempt++ {
		var wb int
		onlyLocal, onlyRemote, wb, err = iblt.ReconcileCtx(ctx, local, remote, seed, h, pool)
		meta.Attempts = attempt + 1
		meta.WireBytes += wb
		meta.FinalHeadroom = h
		if err == nil || attempt >= p.ReconcileRetries || !errors.Is(err, iblt.ErrDecodeIncomplete) {
			return onlyLocal, onlyRemote, meta, err
		}
		h += p.headroomStep()
		if max := p.maxHeadroom(); h > max {
			h = max
		}
	}
}

// BuildMPHF runs the policy's seed-escalating MPHF build loop on an
// explicit pool, without Runtime admission; see Policy.Reconcile for
// when to use the policy-level form. Only whole-ladder build failures
// (ErrMPHFBuildFailed) are retried, each retry with a jittered escalated
// seed; duplicate-key errors, cancellations, and panics are returned
// as-is.
func (p Policy) BuildMPHF(ctx context.Context, keys []uint64, seed uint64, pool *parallel.Pool) (*MPHF, error) {
	s := seed
	for attempt := 0; ; attempt++ {
		f, err := mphf.BuildCtx(ctx, keys, mphf.DefaultGamma, s, 10, pool)
		if err == nil || attempt >= p.BuildRetries || !errors.Is(err, mphf.ErrBuildFailed) {
			return f, err
		}
		s = escalateSeed(seed, attempt+1)
	}
}

// BuildStaticMap is Policy.BuildMPHF for static-map (Bloomier) builds.
func (p Policy) BuildStaticMap(ctx context.Context, keys, values []uint64, seed uint64, pool *parallel.Pool) (*StaticMap, error) {
	s := seed
	for attempt := 0; ; attempt++ {
		f, err := bloomier.BuildCtx(ctx, keys, values, bloomier.DefaultGamma, s, 10, pool)
		if err == nil || attempt >= p.BuildRetries || !errors.Is(err, bloomier.ErrBuildFailed) {
			return f, err
		}
		s = escalateSeed(seed, attempt+1)
	}
}

// escalateSeed derives the jittered seed for build retry attempt
// (1-based): a Mix64 of the original seed and the attempt index, so
// each retry's 10-seed ladder is decorrelated from every other's.
func escalateSeed(seed uint64, attempt int) uint64 {
	return rng.Mix64(seed ^ uint64(attempt)*0xd1342543de82ef95)
}

// RuntimeOptions configure NewRuntime.
type RuntimeOptions struct {
	// Workers is the worker-pool size all jobs share; <= 0 selects
	// GOMAXPROCS.
	Workers int

	// MaxJobs bounds how many jobs run simultaneously; admission of the
	// next job blocks (respecting its context) until a slot frees.
	// <= 0 means unbounded. A bound caps the per-job buffer memory and
	// goroutine count of a server admitting unbounded requests.
	MaxJobs int

	// Policy is the Runtime's default failure-handling policy (timeouts
	// and retries); override it per call site with WithPolicy. The zero
	// Policy adds no timeout and no retries.
	Policy Policy
}

// RuntimeStats is a snapshot of the Runtime's backpressure and failure
// counters: the shared pool's counters (see parallel.Stats) plus the
// Runtime's own.
type RuntimeStats struct {
	parallel.Stats

	// ShutdownErrors counts errors from the background pool release
	// that finishes an expired-ctx Shutdown — e.g. the pool was already
	// shut down underneath the Runtime. Always 0 for a Runtime whose
	// Shutdown completed synchronously.
	ShutdownErrors int64
}

// runtimeCore is the state shared by every handle onto one Runtime:
// the pool, admission bookkeeping, and shutdown state. WithPolicy
// returns a new *Runtime view over the same core, so policy overrides
// never fork the admission or drain machinery.
type runtimeCore struct {
	pool *parallel.Pool
	sem  chan struct{}

	mu     sync.Mutex
	closed bool
	active int           // admitted jobs currently running
	idle   chan struct{} // created by Shutdown when it must wait; closed at active == 0

	shutdownErrs atomic.Int64 // background pool-release failures (see Shutdown)
}

// Runtime is the serving handle for the peeling runtime: one persistent
// worker pool, shared by any number of concurrent jobs, behind a
// context-first API. Every method admits the request as a job (subject
// to MaxJobs), runs it with all parallelism pinned to the shared pool,
// and honors ctx cancellation at the round/subround barriers of the
// underlying peeling process — the paper's O(log log n) round structure
// is what makes cancellation cheap: each job already crosses a barrier
// many times, so a single check per barrier aborts a canceled job within
// one round of extra work.
//
// Failure handling is policy-driven (Policy, WithPolicy): per-job
// default timeouts, seed-escalating build retries, and headroom-
// escalating reconcile retries. Panics inside a job are recovered at
// the chunk and job boundaries and surfaced as ErrJobPanicked — one
// poisoned request cannot kill the process, hang a barrier, or poison
// the pool for its neighbors.
//
// A Runtime is safe for concurrent use. Shut it down with Shutdown,
// which stops admission, drains in-flight jobs, and releases the
// workers. Jobs whose context is canceled return ctx.Err() and are
// counted in Stats().JobsCanceled.
//
//	rt := repro.NewRuntime(repro.RuntimeOptions{MaxJobs: 32})
//	defer rt.Shutdown(context.Background())
//	res, err := rt.Decode(ctx, table)
type Runtime struct {
	core   *runtimeCore
	policy Policy
}

// NewRuntime starts a Runtime with its own worker pool.
func NewRuntime(opts RuntimeOptions) *Runtime {
	rc := &runtimeCore{pool: parallel.NewPool(opts.Workers)}
	if opts.MaxJobs > 0 {
		rc.sem = make(chan struct{}, opts.MaxJobs)
	}
	return &Runtime{core: rc, policy: opts.Policy}
}

// WithPolicy returns a handle onto the same Runtime — same pool, same
// admission bound, same shutdown state — with p as its failure policy.
// It is the per-call override: the returned handle is cheap, immutable,
// and safe to use concurrently with the original.
//
//	gen, err := rt.WithPolicy(repro.Policy{BuildRetries: 2}).
//	    RebuildStaticMap(ctx, tbl, keys, values, seed)
func (rt *Runtime) WithPolicy(p Policy) *Runtime {
	return &Runtime{core: rt.core, policy: p}
}

// Policy returns the handle's failure policy.
func (rt *Runtime) Policy() Policy { return rt.policy }

var (
	defaultRuntime   *Runtime
	defaultRuntimeMu sync.Mutex
)

// DefaultRuntime returns the lazily created process-wide Runtime backing
// the package's one-shot convenience functions (PeelParallel, BuildMPHF,
// ReconcileSets, ...). It runs on the process-wide default worker pool
// (shared with parallel.Default) with unbounded admission and the zero
// Policy. Servers should create their own Runtime to pick
// Workers/MaxJobs/Policy and to own shutdown.
//
// The default Runtime is supervised: if some component shuts it down,
// the next DefaultRuntime call replaces it with a fresh one on a fresh
// default pool (parallel.Default is likewise self-healing), so the
// package-level helpers recover full parallelism instead of degrading
// to inline serial execution for the rest of the process. Handles to
// the old Runtime keep their post-shutdown semantics (ErrRuntimeClosed,
// serial fallbacks in the facade helpers).
func DefaultRuntime() *Runtime {
	defaultRuntimeMu.Lock()
	defer defaultRuntimeMu.Unlock()
	if rt := defaultRuntime; rt != nil {
		rt.core.mu.Lock()
		closed := rt.core.closed
		rt.core.mu.Unlock()
		if !closed && rt.core.pool.Open() {
			return rt
		}
	}
	defaultRuntime = &Runtime{core: &runtimeCore{pool: parallel.Default()}}
	return defaultRuntime
}

// Workers returns the size of the Runtime's worker pool.
func (rt *Runtime) Workers() int { return rt.core.pool.Workers() }

// Pool returns the underlying shared worker pool, for interoperating
// with the deprecated ...WithPool entry points during migration.
func (rt *Runtime) Pool() *WorkerPool { return rt.core.pool }

// Stats returns a snapshot of the Runtime's backpressure and failure
// counters: queue depth and helper occupancy of the shared pool, the
// admitted/rejected/canceled/panicked job totals, and the Runtime's
// background shutdown-error count. Serving layers use it to size
// MaxJobs and detect saturation.
func (rt *Runtime) Stats() RuntimeStats {
	return RuntimeStats{
		Stats:          rt.core.pool.Stats(),
		ShutdownErrors: rt.core.shutdownErrs.Load(),
	}
}

// admit reserves a job slot, blocking while the MaxJobs bound is reached
// (admission respects ctx) and failing with ErrRuntimeClosed once
// Shutdown has begun.
func (rt *Runtime) admit(ctx context.Context) error {
	rc := rt.core
	if err := ctx.Err(); err != nil {
		return err
	}
	if rc.sem != nil {
		select {
		case rc.sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		if rc.sem != nil {
			<-rc.sem
		}
		rc.pool.NoteRejected()
		return ErrRuntimeClosed
	}
	rc.active++
	rc.mu.Unlock()
	return nil
}

// tryAdmit is admit with shed-instead-of-block semantics: when the
// MaxJobs bound is saturated it fails immediately with ErrOverloaded
// (counted in Stats().JobsShed) rather than waiting for a slot.
func (rt *Runtime) tryAdmit(ctx context.Context) error {
	rc := rt.core
	if err := ctx.Err(); err != nil {
		return err
	}
	if rc.sem != nil {
		select {
		case rc.sem <- struct{}{}:
		default:
			rc.pool.NoteShed()
			return ErrOverloaded
		}
	}
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		if rc.sem != nil {
			<-rc.sem
		}
		rc.pool.NoteRejected()
		return ErrRuntimeClosed
	}
	rc.active++
	rc.mu.Unlock()
	return nil
}

// finish releases the job slot reserved by admit, completing a pending
// shutdown when the last job leaves.
func (rt *Runtime) finish() {
	rc := rt.core
	if rc.sem != nil {
		<-rc.sem
	}
	rc.mu.Lock()
	rc.active--
	if rc.active == 0 && rc.idle != nil {
		close(rc.idle)
		rc.idle = nil
	}
	rc.mu.Unlock()
}

// runJob executes job synchronously on the calling goroutine as an
// admitted job of the Runtime and its pool, under the policy's default
// timeout.
func (rt *Runtime) runJob(ctx context.Context, job func(ctx context.Context, pool *parallel.Pool) error) error {
	ctx, cancel := rt.policy.applyTimeout(ctx)
	defer cancel()
	if err := rt.admit(ctx); err != nil {
		return err
	}
	defer rt.finish()
	return rt.execute(ctx, job)
}

// execute runs an already admitted job on the current goroutine,
// registering it with the pool (for drain accounting), recovering any
// panic at the job boundary (ErrJobPanicked), and recording
// cancellations and panics in the pool stats.
func (rt *Runtime) execute(ctx context.Context, job func(ctx context.Context, pool *parallel.Pool) error) error {
	rc := rt.core
	exit, err := rc.pool.Enter()
	if err != nil {
		return err
	}
	defer exit()
	err = func() (jerr error) {
		defer func() {
			if v := recover(); v != nil {
				jerr = parallel.NewPanicError(v)
			}
		}()
		return job(ctx, rc.pool)
	}()
	switch {
	case errors.Is(err, ErrJobPanicked):
		rc.pool.NotePanicked()
	case parallel.IsCancellation(err):
		rc.pool.NoteCanceled()
	}
	return err
}

// Go submits an arbitrary job to run asynchronously on the shared pool —
// the escape hatch subsuming the deprecated JobGroup for workloads the
// typed methods don't cover. The job receives ctx and the shared pool
// and should pass them to the ctx-aware entry points (or check ctx at
// its own barriers). Go blocks only for admission (MaxJobs), respecting
// ctx; it returns a wait function that blocks until the job finishes and
// reports its error. Discarding the wait function is allowed — the job
// still runs and Shutdown still drains it. A job that panics reports
// ErrJobPanicked through the wait function instead of crashing the
// process.
//
//	wait, err := rt.Go(ctx, func(ctx context.Context, p *repro.WorkerPool) error {
//	    res, err := table.DecodeParallelFrontierCtx(ctx, p)
//	    ...
//	})
func (rt *Runtime) Go(ctx context.Context, job func(ctx context.Context, pool *WorkerPool) error) (wait func() error, err error) {
	ctx, cancel := rt.policy.applyTimeout(ctx)
	if err := rt.admit(ctx); err != nil {
		cancel()
		return nil, err
	}
	errc := make(chan error, 1)
	//peelvet:allow nospawn -- this is Runtime.Go itself: the job is already admitted, registered with the pool via execute (drain accounting), and panic-isolated at the job boundary
	go func() {
		defer cancel()
		defer rt.finish()
		errc <- rt.execute(ctx, job)
	}()
	var once sync.Once
	var res error
	return func() error {
		once.Do(func() { res = <-errc })
		return res
	}, nil
}

// TryGo is Go with load shedding instead of queueing: admission never
// blocks. If the MaxJobs bound is saturated the job is shed — TryGo
// returns ErrOverloaded immediately, the job never ran, and the shed is
// counted in Stats().JobsShed — so an accept loop sitting in front of
// the Runtime can answer "overloaded, retry later" in constant time
// instead of stacking goroutines behind a full semaphore. A shed job is
// always safe to retry: it was rejected before any side effect. All
// other semantics (panic isolation, drain accounting, the wait
// function) match Go.
func (rt *Runtime) TryGo(ctx context.Context, job func(ctx context.Context, pool *WorkerPool) error) (wait func() error, err error) {
	ctx, cancel := rt.policy.applyTimeout(ctx)
	if err := rt.tryAdmit(ctx); err != nil {
		cancel()
		return nil, err
	}
	errc := make(chan error, 1)
	//peelvet:allow nospawn -- this is TryGo, Runtime.Go's shedding twin: the job is already admitted, registered with the pool via execute (drain accounting), and panic-isolated at the job boundary
	go func() {
		defer cancel()
		defer rt.finish()
		errc <- rt.execute(ctx, job)
	}()
	var once sync.Once
	var res error
	return func() error {
		once.Do(func() { res = <-errc })
		return res
	}, nil
}

// Shutdown gracefully drains the Runtime: admission stops immediately
// (subsequent calls return ErrRuntimeClosed), in-flight jobs run to
// completion, and the worker pool is then released. It returns nil once
// everything has drained. If ctx expires first it returns ctx.Err();
// the Runtime keeps draining in the background and the workers are
// released when the last job finishes (Go cannot force-kill goroutines —
// cancel the jobs' own contexts to make the drain converge faster). An
// error from that background release (e.g. the pool was already shut
// down underneath the Runtime) is counted in Stats().ShutdownErrors
// rather than silently dropped. Calling Shutdown again returns
// ErrRuntimeClosed.
func (rt *Runtime) Shutdown(ctx context.Context) error {
	rc := rt.core
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return ErrRuntimeClosed
	}
	rc.closed = true
	if rc.active == 0 {
		// Already drained: complete synchronously — even an expired ctx
		// reports success for a shutdown that has nothing left to wait
		// for (the pool drain below is likewise immediate).
		rc.mu.Unlock()
		return rc.pool.Shutdown(ctx)
	}
	idle := make(chan struct{})
	rc.idle = idle
	rc.mu.Unlock()

	select {
	case <-idle:
		return rc.pool.Shutdown(ctx)
	case <-ctx.Done():
		//peelvet:allow nospawn -- shutdown plumbing: the background drain outlives every job (nothing left to isolate) and its failure is surfaced via Stats().ShutdownErrors
		go func() {
			<-idle
			if err := rc.pool.Shutdown(context.Background()); err != nil {
				rc.shutdownErrs.Add(1)
			}
		}()
		return ctx.Err()
	}
}

// Peel runs the round-synchronous parallel peeling process on the
// shared pool. opts selects scan policy, round cap, and grain; its Pool
// and Workers fields are ignored (the Runtime's pool always wins).
// Cancellation is checked at every round barrier: a canceled peel stops
// within one round of extra work and returns (nil, ctx.Err()).
func (rt *Runtime) Peel(ctx context.Context, g *Hypergraph, k int, opts PeelOptions) (*PeelResult, error) {
	var res *PeelResult
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		opts.Workers = 0
		opts.Pool = pool
		var err error
		res, err = core.ParallelCtx(ctx, g, k, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// PeelOrdered runs the ordered round-synchronous peeling process on the
// shared pool: the same rounds and k-core as Peel, plus the round-major
// peel order and the minimum-endpoint edge orientation the data-
// structure constructions consume. The result is bit-identical at every
// worker count (see core.OrderedResult). Cancellation is checked at
// every round barrier.
func (rt *Runtime) PeelOrdered(ctx context.Context, g *Hypergraph, k int, opts PeelOptions) (*OrderedPeelResult, error) {
	var res *OrderedPeelResult
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		opts.Workers = 0
		opts.Pool = pool
		var err error
		res, err = core.ParallelOrderCtx(ctx, g, k, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// PeelSubtables runs the Appendix B subround peeling process on the
// shared pool; g must be partitioned. Cancellation is checked at every
// subround barrier.
func (rt *Runtime) PeelSubtables(ctx context.Context, g *Hypergraph, k int, opts PeelOptions) (*PeelResult, error) {
	var res *PeelResult
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		opts.Workers = 0
		opts.Pool = pool
		var err error
		res, err = core.SubtablesCtx(ctx, g, k, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Decode peels an IBLT with the work-efficient parallel frontier
// decoder on the shared pool. Decoding is destructive — Clone first if
// the table is still needed — and a canceled decode leaves the table
// partially decoded (discard it). Cancellation is checked at every
// subround barrier.
func (rt *Runtime) Decode(ctx context.Context, t *IBLT) (*IBLTParallelResult, error) {
	var res *IBLTParallelResult
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		var err error
		res, err = t.DecodeParallelFrontierCtx(ctx, pool)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// BuildMPHF builds a minimal perfect hash function over distinct keys
// (γ = 1.23, up to 10 seed attempts) with every phase on the shared
// pool: hashing, index build, the ordered parallel peel, and the
// round-parallel g-value assignment. The resulting function is
// identical at every Runtime size (the ordered peel is bit-stable
// across worker counts). Cancellation is checked at every round barrier
// of every attempt, so a canceled build aborts within one peel round of
// extra work — not one phase.
//
// Under a Policy with BuildRetries > 0, a build whose whole seed ladder
// fails (ErrMPHFBuildFailed) is retried with a jittered escalated seed;
// duplicate-key errors, cancellations, and panics are never retried.
func (rt *Runtime) BuildMPHF(ctx context.Context, keys []uint64, seed uint64) (*MPHF, error) {
	var f *MPHF
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		var err error
		f, err = rt.policy.BuildMPHF(ctx, keys, seed, pool)
		return err
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// BuildStaticMap builds an immutable key → value map (Bloomier filter)
// with every phase — hashing, index build, the ordered parallel peel,
// and round-parallel back-substitution — on the shared pool. The
// resulting map is byte-identical at every Runtime size (the ordered
// peel is bit-stable across worker counts), so a map built here seals
// the same flat image an offline builder box would produce.
// Cancellation is checked at every round barrier of every attempt.
//
// Build retries under a Policy behave exactly as in BuildMPHF.
func (rt *Runtime) BuildStaticMap(ctx context.Context, keys, values []uint64, seed uint64) (*StaticMap, error) {
	var f *StaticMap
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		var err error
		f, err = rt.policy.BuildStaticMap(ctx, keys, values, seed, pool)
		return err
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Reconcile runs the full two-message IBLT set-reconciliation protocol
// between two key sets on the shared pool: parallel strata-estimator
// inserts, bulk table inserts, and the frontier decode. headroom >= 1.25
// oversizes the difference table for safety. The returned difference
// sides are sorted (deterministic at every pool size). Cancellation is
// checked between protocol phases and at the decode's subround barriers.
//
// Under a Policy with ReconcileRetries > 0, an incomplete decode
// (ErrReconcileIncomplete — the difference table was undersized for the
// true difference) is retried with the headroom escalated by
// HeadroomStep per attempt, up to MaxHeadroom: graceful degradation —
// some extra wire bytes — instead of a terminal error. wireBytes
// accumulates across attempts, as a networked deployment's would.
func (rt *Runtime) Reconcile(ctx context.Context, local, remote []uint64, seed uint64, headroom float64) (onlyLocal, onlyRemote []uint64, wireBytes int, err error) {
	onlyLocal, onlyRemote, meta, err := rt.ReconcileMeta(ctx, local, remote, seed, headroom)
	return onlyLocal, onlyRemote, meta.WireBytes, err
}

// ReconcileMeta is Reconcile returning the full retry metadata — attempt
// count, accumulated wire bytes, and the final headroom — instead of
// just the byte total. The wire server surfaces this in its reply so
// clients can observe headroom escalation.
func (rt *Runtime) ReconcileMeta(ctx context.Context, local, remote []uint64, seed uint64, headroom float64) (onlyLocal, onlyRemote []uint64, meta ReconcileMeta, err error) {
	err = rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		var jerr error
		onlyLocal, onlyRemote, meta, jerr = rt.policy.Reconcile(ctx, local, remote, seed, headroom, pool)
		return jerr
	})
	if err != nil {
		return nil, nil, meta, err
	}
	return onlyLocal, onlyRemote, meta, nil
}

// EncodeErasure computes the check block of a Biff-style erasure code
// for data, with the per-symbol cell updates fanned out over the shared
// pool (cell-for-cell identical to the serial encoder).
func (rt *Runtime) EncodeErasure(ctx context.Context, code *ErasureCode, data []uint64) ([]ErasureCell, error) {
	var checks []ErasureCell
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		var err error
		checks, err = code.EncodeCtx(ctx, data, pool)
		return err
	})
	if err != nil {
		return nil, err
	}
	return checks, nil
}

// DecodeErasure reconstructs the missing entries of data in place
// (present[i] reports whether data[i] survived) with both phases on the
// shared pool: parallel subtraction of received symbols, then the
// round-synchronous parallel peel of the missing set. Cancellation is
// checked inside subtraction and at every peeling round barrier; a
// canceled decode leaves data/present partially updated (treat the block
// as abandoned).
func (rt *Runtime) DecodeErasure(ctx context.Context, code *ErasureCode, data []uint64, present []bool, checks []ErasureCell) error {
	return rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		return code.DecodeCtx(ctx, data, present, checks, pool)
	})
}
