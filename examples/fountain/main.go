// Rateless transmission with an LT fountain code: the sender streams
// encoded symbols indefinitely; the receiver collects whichever subset
// survives the lossy channel and peels as soon as it plausibly has
// enough. No retransmission protocol, no knowledge of the loss rate —
// the receiver just keeps listening until peeling completes.
package main

import (
	"fmt"

	"repro/internal/fountain"
	"repro/internal/rng"
)

func main() {
	const k = 20_000 // message symbols
	const lossRate = 0.35

	gen := rng.New(17)
	msg := make([]uint64, k)
	for i := range msg {
		msg[i] = gen.Uint64()
	}
	enc, err := fountain.NewEncoder(msg, fountain.DefaultParams(), 2014)
	if err != nil {
		fmt.Println(err)
		return
	}

	fmt.Printf("streaming %d-symbol message over a channel losing %.0f%% of packets\n\n", k, 100*lossRate)
	var received []fountain.Symbol
	sent := 0
	for batch := 1; ; batch++ {
		for _, s := range enc.Emit(k / 10) {
			sent++
			if gen.Float64() >= lossRate {
				received = append(received, s)
			}
		}
		if len(received) < k {
			continue // can't possibly decode yet
		}
		got, recovered, err := fountain.Decode(k, received, fountain.DefaultParams())
		fmt.Printf("after %6d sent / %6d received: recovered %5d/%d\n",
			sent, len(received), recovered, k)
		if err == nil {
			for i := range msg {
				if got[i] != msg[i] {
					fmt.Println("MISCOMPARE (bug)")
					return
				}
			}
			fmt.Printf("\ndecoded exactly; reception overhead %.1f%% over k (channel loss made the sender emit %.2fx)\n",
				100*(float64(len(received))/k-1), float64(sent)/k)
			return
		}
	}
}
