// Minimal perfect hashing via peeling (BDZ construction): m keys become
// edges of a 3-partite hypergraph over 1.23·m vertices — edge density
// 1/1.23 ≈ 0.813, deliberately a hair below the paper's threshold
// c*(2,3) ≈ 0.818 — so peeling to the empty 2-core succeeds on the first
// seed w.h.p., and reverse-order assignment yields a collision-free,
// gap-free key → [0, m) map.
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/rng"
)

func main() {
	const nKeys = 1_000_000

	gen := rng.New(5)
	keys := make([]uint64, 0, nKeys)
	seen := make(map[uint64]bool, nKeys)
	for len(keys) < nKeys {
		k := gen.Uint64()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}

	start := time.Now()
	f, err := repro.BuildMPHF(keys, 1234)
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	fmt.Printf("built MPHF over %d keys in %v (%d internal vertices, %.2f bits/key for g-array)\n",
		f.Keys(), time.Since(start).Round(time.Millisecond), f.Vertices(),
		2*float64(f.Vertices())/float64(f.Keys()))

	// Verify perfection and minimality: every key maps to a distinct
	// slot in [0, m).
	start = time.Now()
	hit := make([]bool, nKeys)
	for _, k := range keys {
		v := f.Lookup(k)
		if v < 0 || v >= nKeys || hit[v] {
			fmt.Println("NOT A MINIMAL PERFECT HASH (bug)")
			return
		}
		hit[v] = true
	}
	fmt.Printf("verified %d lookups in %v: bijective onto [0, %d)\n",
		nKeys, time.Since(start).Round(time.Millisecond), nKeys)
}
