// Sparse recovery — the Section 6 motivating workload for IBLTs: N items
// flow into a set and all but n of them are later deleted. The IBLT uses
// space proportional to the final n survivors (not the N insertions) and
// still returns the surviving set exactly, by peeling. Recovery succeeds
// while survivors/cells stays below c*(2,r).
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/rng"
)

func main() {
	const totalInserted = 2_000_000
	const survivors = 100_000
	const cells = 1 << 18 // load = 0.38, comfortably below c*(2,4) = 0.772

	gen := rng.New(3)
	keys := make([]uint64, totalInserted)
	seen := make(map[uint64]bool, totalInserted)
	for i := range keys {
		for {
			k := gen.Uint64()
			if k != 0 && !seen[k] {
				seen[k] = true
				keys[i] = k
				break
			}
		}
	}

	table := repro.NewIBLT(cells, 4, 2014)
	start := time.Now()
	table.InsertAll(keys)             // N insertions
	table.DeleteAll(keys[survivors:]) // N - n deletions
	fmt.Printf("streamed %d inserts + %d deletes through %d cells in %v\n",
		totalInserted, totalInserted-survivors, table.Cells(),
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("table load at recovery time: %.3f (threshold %.3f)\n",
		table.Load(survivors), 0.7723)

	start = time.Now()
	res := table.DecodeParallel()
	fmt.Printf("parallel recovery: complete=%v, %d keys in %d rounds, %v\n",
		res.Complete, len(res.Added), res.Rounds, time.Since(start).Round(time.Millisecond))

	// Verify the recovered set is exactly the surviving prefix.
	want := make(map[uint64]bool, survivors)
	for _, k := range keys[:survivors] {
		want[k] = true
	}
	if len(res.Added) != survivors {
		fmt.Println("RECOVERY FAILED: wrong count")
		return
	}
	for _, k := range res.Added {
		if !want[k] {
			fmt.Println("RECOVERY FAILED: bogus key")
			return
		}
	}
	fmt.Println("recovery OK: surviving set reproduced exactly")
}
