// Set reconciliation (Eppstein et al., SIGCOMM 2011): two hosts hold
// nearly identical key sets and want to learn the difference while
// exchanging only O(difference) bytes. Each host summarizes its set in an
// IBLT sized for the expected difference, one table is subtracted from
// the other, and peeling the difference table yields exactly the
// symmetric difference — with the paper's parallel recovery finishing in
// O(log log d) rounds.
package main

import (
	"fmt"

	"repro"
	"repro/internal/rng"
)

func main() {
	const shared = 1_000_000 // keys on both hosts
	const diffA, diffB = 450, 550
	const tableCells = 4096 // sized for ~1000 differences: load ~0.24

	gen := rng.New(7)
	newKey := func() uint64 {
		for {
			if k := gen.Uint64(); k != 0 {
				return k
			}
		}
	}

	common := make([]uint64, shared)
	for i := range common {
		common[i] = newKey()
	}
	onlyA := make([]uint64, diffA)
	for i := range onlyA {
		onlyA[i] = newKey()
	}
	onlyB := make([]uint64, diffB)
	for i := range onlyB {
		onlyB[i] = newKey()
	}

	setA := append(append([]uint64(nil), common...), onlyA...)
	setB := append(append([]uint64(nil), common...), onlyB...)
	fmt.Printf("host A: %d keys, host B: %d keys, true difference: %d\n",
		len(setA), len(setB), diffA+diffB)

	// Path 1 — the full two-message protocol: strata estimators size the
	// difference, then a difference-sized IBLT is exchanged and decoded.
	// Neither side needs to know the difference size in advance.
	gotA, gotB, wire, err := repro.ReconcileSets(setA, setB, 2024, 1.5)
	if err != nil {
		fmt.Println("protocol failed:", err)
		return
	}
	fmt.Printf("protocol: recovered %d A-only / %d B-only keys over %d KiB on the wire (full set: %.1f MiB)\n",
		len(gotA), len(gotB), wire/1024, float64(len(setA))*8/(1<<20))
	if len(gotA) != diffA || len(gotB) != diffB {
		fmt.Println("RECONCILIATION FAILED (protocol)")
		return
	}

	// Path 2 — pre-sized tables with the paper's parallel recovery, for
	// when the difference bound is known: B subtracts A's summary and
	// peels it across all cores.
	hostA := repro.NewIBLT(tableCells, 4, 99)
	hostA.InsertAll(setA)
	hostB := repro.NewIBLT(tableCells, 4, 99)
	hostB.InsertAll(setB)
	hostB.Subtract(hostA)
	res := hostB.DecodeParallel()
	fmt.Printf("pre-sized table: complete=%v in %d rounds (%d subrounds), %d cells x 24 B = %d KiB\n",
		res.Complete, res.Rounds, res.Subrounds, hostA.Cells(), hostA.Cells()*24/1024)
	if !res.Complete || len(res.Added) != diffB || len(res.Removed) != diffA {
		fmt.Println("RECONCILIATION FAILED (pre-sized)")
		return
	}
	fmt.Println("reconciliation OK: symmetric difference recovered exactly, both paths")
}
