// Random XORSAT across its three regimes: below the peeling threshold
// c*(2,3) ≈ 0.818 the whole system solves by peeling alone (the "pure
// literal rule"); between 0.818 and the satisfiability threshold ≈ 0.917
// a non-empty 2-core needs Gaussian elimination but the system is still
// almost surely consistent; past 0.917 a random right-hand side is
// almost surely contradictory.
package main

import (
	"fmt"

	"repro"
	"repro/internal/rng"
	"repro/internal/xorsat"
)

func main() {
	// Sized so the dense GF(2) elimination on the ~n/2-equation core in
	// the middle regime stays in seconds; peeling itself scales far
	// beyond this (see cmd/peelsim), but the Gauss stage is cubic.
	const n = 20_000
	cstar, _ := repro.Threshold(2, 3)
	fmt.Printf("random 3-XORSAT over %d variables (peel threshold %.4f, SAT threshold ~0.917)\n\n", n, cstar)

	for _, c := range []float64{0.70, 0.86, 0.95} {
		in := repro.NewRandomXORSAT(n, int(c*float64(n)), 3, 2014)
		assign, stats, err := in.Solve()
		switch {
		case err != nil:
			fmt.Printf("c=%.2f: UNSATISFIABLE (peeled %d, core %d eqs, rank %d)\n",
				c, stats.PeeledEquations, stats.CoreEquations, stats.GaussRank)
		case !in.Check(assign):
			fmt.Printf("c=%.2f: INTERNAL ERROR — solution fails check\n", c)
		case stats.CoreEquations == 0:
			fmt.Printf("c=%.2f: solved by peeling alone (%d equations back-substituted)\n",
				c, stats.PeeledEquations)
		default:
			fmt.Printf("c=%.2f: solved — peeled %d eqs, Gauss on a %d-eq / %d-var core (rank %d)\n",
				c, stats.PeeledEquations, stats.CoreEquations, stats.CoreVariables, stats.GaussRank)
		}
	}

	fmt.Println("\nplanted instance above the SAT threshold (always consistent):")
	planted, _ := xorsat.RandomSatisfiable(n/2, int(1.05*float64(n/2)), 3, rng.New(7))
	assign, stats, err := planted.Solve()
	if err != nil || !planted.Check(assign) {
		fmt.Println("  FAILED:", err)
		return
	}
	fmt.Printf("  solved %d-var instance at c=1.05 with a %d-eq core (rank %d)\n",
		n/2, stats.CoreEquations, stats.GaussRank)
}
