// Erasure coding with a Biff-style peeling code (Mitzenmacher & Varghese):
// every data symbol is XORed into r = 3 check cells; losing up to
// ~0.818 × cells symbols still allows exact reconstruction, because the
// missing symbols form a random 3-uniform hypergraph whose 2-core is
// empty below the threshold — the regime where the paper's parallel
// peeling finishes in O(log log n) rounds.
package main

import (
	"fmt"

	"repro"
	"repro/internal/rng"
)

func main() {
	const nSymbols = 1_000_000
	const checkCells = 40_000 // 4% overhead

	gen := rng.New(11)
	data := make([]uint64, nSymbols)
	for i := range data {
		data[i] = gen.Uint64()
	}
	code := repro.NewErasureCode(checkCells, 3, 77)
	checks := code.Encode(data)
	cstar, _ := repro.Threshold(2, 3)
	budget := code.MaxTolerableLoss(cstar)
	fmt.Printf("encoded %d symbols into %d check cells (%.1f%% overhead)\n",
		nSymbols, checkCells, 100*float64(checkCells)/nSymbols)
	fmt.Printf("loss budget: ~%d symbols (threshold c*(2,3) = %.4f)\n\n", budget, cstar)

	for _, losses := range []int{25_000, 30_000, 38_000} {
		received := append([]uint64(nil), data...)
		present := make([]bool, nSymbols)
		for i := range present {
			present[i] = true
		}
		perm := gen.Perm(nSymbols)
		for _, i := range perm[:losses] {
			received[i] = 0
			present[i] = false
		}

		err := code.Decode(received, present, checks)
		status := "recovered exactly"
		if err != nil {
			status = err.Error()
		} else {
			for i := range data {
				if received[i] != data[i] {
					status = "MISCOMPARE (bug)"
					break
				}
			}
		}
		fmt.Printf("lost %6d symbols (load %.3f): %s\n",
			losses, float64(losses)/checkCells, status)
	}
	fmt.Println("\nthe failure at load > 0.818 is the Theorem 3 regime: a non-empty 2-core survives")
}
