// Quickstart: generate a random 4-uniform hypergraph below the peeling
// threshold, peel it in parallel, and watch the doubly-exponential
// collapse the paper proves — then cross the threshold and watch peeling
// stall at a large 2-core.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 1 << 20 // vertices
	const k, r = 2, 4

	ctx := context.Background()
	rt := repro.NewRuntime(repro.RuntimeOptions{})
	defer rt.Shutdown(ctx)

	cstar, _ := repro.Threshold(k, r)
	fmt.Printf("threshold c*(%d,%d) = %.5f\n\n", k, r, cstar)

	for _, c := range []float64{0.70, 0.85} {
		m := int(c * n)
		g := repro.NewUniformHypergraph(n, m, r, 42)
		res, err := rt.Peel(ctx, g, k, repro.PeelOptions{})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("c = %.2f (%d edges): %d rounds, core = %d vertices / %d edges\n",
			c, m, res.Rounds, res.CoreVertices, res.CoreEdges)
		fmt.Println("  survivors per round:")
		for t, s := range res.SurvivorHistory {
			fmt.Printf("    round %2d: %8d\n", t+1, s)
		}

		// Compare with the idealized recurrence (Table 2 of the paper).
		pred, err := repro.RecurrenceParams{K: k, R: r, C: c}.Trace(res.Rounds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  recurrence check (round: simulated / predicted):")
		for t := 0; t < 3 && t < len(pred); t++ {
			fmt.Printf("    round %2d: %8d / %8.0f\n",
				t+1, res.SurvivorHistory[t], pred[t].Lambda*n)
		}
		fmt.Println()
	}
}
