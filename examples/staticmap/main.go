// Static function retrieval with a Bloomier-style filter (paper reference
// [4]): an immutable key → value map in ~9.84 bytes per key — no key
// storage at all — built by a single peeling pass and queried with three
// hashes and two XORs. Construction works precisely because the slot/key
// ratio 1.23 keeps the hypergraph density below the paper's c*(2,3)
// threshold.
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/rng"
)

func main() {
	const nKeys = 1_000_000

	gen := rng.New(21)
	keys := make([]uint64, 0, nKeys)
	values := make([]uint64, 0, nKeys)
	seen := make(map[uint64]bool, nKeys)
	for len(keys) < nKeys {
		k := gen.Uint64()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
			values = append(values, gen.Uint64())
		}
	}

	start := time.Now()
	f, err := repro.BuildStaticMap(keys, values, 2014)
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	fmt.Printf("built static map over %d keys in %v\n", nKeys, time.Since(start).Round(time.Millisecond))
	fmt.Printf("storage: %d slots x 8 bytes = %.2f bytes/key (a Go map needs >16 bytes/key before values)\n",
		f.Slots(), 8*float64(f.Slots())/nKeys)

	start = time.Now()
	for i, k := range keys {
		if f.Lookup(k) != values[i] {
			fmt.Println("WRONG VALUE (bug)")
			return
		}
	}
	fmt.Printf("verified %d lookups in %v\n", nKeys, time.Since(start).Round(time.Millisecond))
}
