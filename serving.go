package repro

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bloomier"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/mphf"
	"repro/internal/parallel"
)

// StaticFunc is the serve-time contract of the peeling-built static
// structures: an immutable key → uint64 function. Both *MPHF (the
// assigned index) and *StaticMap (the stored value) satisfy it, whether
// freshly built or opened zero-copy from a flat image.
type StaticFunc interface {
	LookupValue(key uint64) uint64
}

// OpenMPHF validates data as a flat MPHF image (the bytes of
// (*MPHF).Bytes, an os.ReadFile, or a read-only mmap) and returns a
// zero-copy view over it: no array is decoded or copied, so data must
// stay immutable for the life of the function. Hostile or corrupt
// images are rejected with an error, never a panic; if data is a
// subslice whose base is not 8-byte aligned, repair it with
// AlignImage first.
func OpenMPHF(data []byte) (*MPHF, error) { return mphf.Open(data) }

// OpenStaticMap is OpenMPHF for flat static-map (Bloomier) images.
func OpenStaticMap(data []byte) (*StaticMap, error) { return bloomier.Open(data) }

// AlignImage returns data unchanged when its base is 8-byte aligned
// (always true for os.ReadFile and mmap results) and an aligned copy
// otherwise — the escape hatch for image bytes carved out of larger
// buffers, which the zero-copy loaders reject.
func AlignImage(data []byte) []byte { return layout.Aligned(data) }

// pinShards spreads lookup pin/unpin traffic over several padded
// counters so the lookup path scales past a single contended cache
// line. Must be a power of two.
const pinShards = 16

type pinShard struct {
	n atomic.Int64
	_ [56]byte // pad to a cache line
}

// staticGen is one installed generation of a StaticTable: the function,
// its generation number, an optional release hook (munmap, buffer
// recycling), and the epoch pin counters that gate reclamation.
type staticGen struct {
	gen     uint64
	fn      StaticFunc
	release func()
	pins    [pinShards]pinShard
}

// drained reports whether no lookup currently pins this generation.
func (g *staticGen) drained() bool {
	for i := range g.pins {
		if g.pins[i].n.Load() != 0 {
			return false
		}
	}
	return true
}

// StaticTable is a serving handle for one static function with
// atomic-swap rebuilds: lookups run lock-free against the current
// generation while Swap installs a rebuilt function underneath them.
// Correctness is epoch-style — every lookup pins the generation it
// resolved before touching its arrays and unpins after, and Swap
// reclaims (calls the release hook of) a retired generation only after
// its epoch has drained — so an in-flight lookup never observes a torn
// or unmapped image, without any lock on the lookup path.
//
// The zero value... is not useful; create with NewStaticTable. A table
// with no generation installed yet answers (0, false).
//
//	tbl := repro.NewStaticTable()
//	gen, _ := rt.RebuildStaticMap(ctx, tbl, keys, values, seed) // gen 1
//	v, ok := tbl.Lookup(k)                                      // lock-free
//	rt.RebuildStaticMap(ctx, tbl, keys, newValues, seed)        // gen 2, swap under load
type StaticTable struct {
	cur atomic.Pointer[staticGen]

	swapMu  sync.Mutex // serializes swaps; never touched by lookups
	lastGen uint64     // generation counter, under swapMu

	// Corrupt-image quarantine (SwapImage): how many candidate images
	// were rejected, and why the last one was. Both are atomics — a
	// rejection never touches swapMu, so a flood of bad images cannot
	// stall a concurrent good swap.
	rejects    atomic.Int64
	lastReject atomic.Pointer[error]
}

// NewStaticTable returns an empty serving handle; install the first
// generation with Swap (or Runtime.RebuildStaticMap / RebuildMPHF).
func NewStaticTable() *StaticTable { return &StaticTable{} }

// pinHint picks a pin shard. math/rand/v2's top-level generator draws
// from a per-P state, so concurrent readers spread across shards with
// no shared cache line on the hint itself — and no unsafe stack-address
// probing (the pin/unpin pair uses the one hint, so any spread works).
func pinHint() int {
	return int(rand.Uint64()) & (pinShards - 1)
}

// pin resolves and pins the current generation. The recheck after the
// increment makes the pin safe against a concurrent swap: if the
// recheck still observes g as current, the swap's pointer store had not
// yet happened, so the swapper's subsequent drain scan is guaranteed to
// see this pin (all accesses are sequentially consistent atomics);
// if it observes a newer generation, g may already be draining, so back
// out and retry on the new one.
func (t *StaticTable) pin(shard int) *staticGen {
	for {
		g := t.cur.Load()
		if g == nil {
			return nil
		}
		g.pins[shard].n.Add(1)
		if t.cur.Load() == g {
			return g
		}
		g.pins[shard].n.Add(-1)
	}
}

// Lookup serves one key from the current generation, lock-free: an
// atomic load, a pin/unpin pair on a sharded counter, and the static
// function's O(1) probe. ok is false only when no generation has been
// installed yet.
func (t *StaticTable) Lookup(key uint64) (value uint64, ok bool) {
	shard := pinHint()
	g := t.pin(shard)
	if g == nil {
		return 0, false
	}
	value = g.fn.LookupValue(key)
	g.pins[shard].n.Add(-1)
	return value, true
}

// LookupBatch serves keys[i] into out[i] for all i under a single
// pin/unpin pair — the batched hot path: one epoch entry amortized over
// the whole batch, and every answer drawn from one consistent
// generation (whose number is returned). out must be at least as long
// as keys. ok is false only when no generation is installed.
func (t *StaticTable) LookupBatch(keys []uint64, out []uint64) (gen uint64, ok bool) {
	shard := pinHint()
	g := t.pin(shard)
	if g == nil {
		return 0, false
	}
	for i, k := range keys {
		out[i] = g.fn.LookupValue(k)
	}
	g.pins[shard].n.Add(-1)
	return g.gen, true
}

// Generation returns the current generation number (0 when empty).
func (t *StaticTable) Generation() uint64 {
	if g := t.cur.Load(); g != nil {
		return g.gen
	}
	return 0
}

// Swap atomically installs fn as the table's next generation and
// returns its generation number. Lookups started after the swap see fn
// immediately; lookups in flight finish against the old generation.
// Swap then waits for the old generation's epoch to drain and calls its
// release hook (registered by the Swap that installed it) — the point
// where an mmap'd image can be safely munmap'd or a buffer recycled.
// release may be nil. Concurrent Swaps serialize; lookups never block.
func (t *StaticTable) Swap(fn StaticFunc, release func()) uint64 {
	t.swapMu.Lock()
	t.lastGen++
	g := &staticGen{gen: t.lastGen, fn: fn, release: release}
	old := t.cur.Swap(g)
	t.swapMu.Unlock()
	if old != nil {
		waitDrain(old)
		if old.release != nil {
			old.release()
		}
	}
	return g.gen
}

// openStatic validates data as a flat image and returns the matching
// zero-copy static function (MPHF or static map, by the image's kind
// tag) — the kind-dispatching loader behind SwapImage.
func openStatic(data []byte) (StaticFunc, error) {
	im, err := layout.Open(data)
	if err != nil {
		return nil, err
	}
	switch im.Kind {
	case layout.KindMPHF:
		return mphf.FromImage(im)
	case layout.KindBloomier:
		return bloomier.FromImage(im)
	default:
		return nil, fmt.Errorf("%w: kind %d", layout.ErrBadImage, uint16(im.Kind))
	}
}

// SwapImage validates data as a flat image (either kind) and, only if
// the header, bounds, and checksum all verify, installs the zero-copy
// view as the table's next generation — the crash-safe ingestion path
// for images arriving from disk or the network. A corrupt, truncated,
// or torn image is quarantined: SwapImage returns the validation error
// (matching layout.ErrBadImage / layout.ErrUnaligned), the previous
// generation keeps serving untouched, and the rejection is counted
// (SwapRejections). data must stay immutable for the life of the
// generation; release runs when the generation is eventually retired
// and drained, exactly as in Swap.
func (t *StaticTable) SwapImage(data []byte, release func()) (uint64, error) {
	if faultinject.Enabled {
		// Failpoint: the callback may corrupt the candidate bytes,
		// exercising the quarantine below.
		faultinject.Fire(faultinject.ServingSwap, data)
	}
	fn, err := openStatic(data)
	if err != nil {
		t.rejects.Add(1)
		t.lastReject.Store(&err)
		return 0, err
	}
	return t.Swap(fn, release), nil
}

// SwapRejections reports the corrupt-image quarantine state: how many
// SwapImage candidates failed validation over the table's lifetime, and
// the most recent rejection's error (nil if none). Serving layers alarm
// on a rising count — it means a builder or transport is handing the
// server bad images — while lookups continue against the last good
// generation.
func (t *StaticTable) SwapRejections() (count int64, last error) {
	if p := t.lastReject.Load(); p != nil {
		last = *p
	}
	return t.rejects.Load(), last
}

// waitDrain spins until no lookup pins g anymore. Lookups hold their
// pin only for one O(1) probe (or one batch), so the wait is short;
// back off to the scheduler, then to sleeps, rather than burn a core.
func waitDrain(g *staticGen) {
	for spin := 0; !g.drained(); spin++ {
		if spin < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// Lookup serves one key from a StaticTable. It is the facade spelling
// of tbl.Lookup — a lock-free read against the current generation, with
// no admission control or context: serving lookups are the hot path the
// Runtime's job machinery must never sit in front of.
func (rt *Runtime) Lookup(tbl *StaticTable, key uint64) (uint64, bool) {
	return tbl.Lookup(key)
}

// Swap installs fn as tbl's next generation as an admitted Runtime job
// (so Shutdown drains an in-progress swap) and returns the new
// generation number. The job includes waiting out the old generation's
// epoch and running its release hook; see StaticTable.Swap. fn is
// typically a freshly built *StaticMap / *MPHF or one opened zero-copy
// from an image; release is where an mmap of the outgoing image gets
// unmapped.
func (rt *Runtime) Swap(ctx context.Context, tbl *StaticTable, fn StaticFunc, release func()) (uint64, error) {
	var gen uint64
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		gen = tbl.Swap(fn, release)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return gen, nil
}

// SwapImage validates data as a flat image and installs it as tbl's
// next generation as an admitted Runtime job, with the same corrupt-
// image quarantine as StaticTable.SwapImage: a bad image returns an
// error (matching layout.ErrBadImage / layout.ErrUnaligned), leaves the
// table serving its current generation, and is counted in
// tbl.SwapRejections.
func (rt *Runtime) SwapImage(ctx context.Context, tbl *StaticTable, data []byte, release func()) (uint64, error) {
	var gen uint64
	err := rt.runJob(ctx, func(ctx context.Context, pool *parallel.Pool) error {
		var jerr error
		gen, jerr = tbl.SwapImage(data, release)
		return jerr
	})
	if err != nil {
		return 0, err
	}
	return gen, nil
}

// RebuildStaticMap builds a static map over (keys, values) as an
// ordinary pool job — concurrent with every lookup and every other job
// on the Runtime — and atomically swaps it into tbl, returning the new
// generation number. Lookups are served continuously throughout: the
// old generation answers until the instant of the swap, then is
// reclaimed once its in-flight lookups drain. Cancellation is checked
// at every build round barrier; a canceled rebuild leaves tbl on its
// current generation.
func (rt *Runtime) RebuildStaticMap(ctx context.Context, tbl *StaticTable, keys, values []uint64, seed uint64) (uint64, error) {
	sm, err := rt.BuildStaticMap(ctx, keys, values, seed)
	if err != nil {
		return 0, err
	}
	return rt.Swap(ctx, tbl, sm, nil)
}

// RebuildMPHF is RebuildStaticMap for minimal perfect hash functions:
// lookups through tbl then return the assigned index as a uint64.
func (rt *Runtime) RebuildMPHF(ctx context.Context, tbl *StaticTable, keys []uint64, seed uint64) (uint64, error) {
	f, err := rt.BuildMPHF(ctx, keys, seed)
	if err != nil {
		return 0, err
	}
	return rt.Swap(ctx, tbl, f, nil)
}
