// Benchmarks regenerating each table and figure of "Parallel Peeling
// Algorithms" (scaled for testing.B; the cmd/ binaries run paper-sized
// sweeps), plus the ablation benches called out in DESIGN.md.
//
// Run everything:  go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/iblt"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// BenchmarkTable1 regenerates one Table 1 sweep (rounds vs n at densities
// straddling the threshold) per iteration, at reduced size.
func BenchmarkTable1(b *testing.B) {
	cfg := experiments.Table1Config{
		K: 2, R: 4,
		Cs:     []float64{0.70, 0.75, 0.80, 0.85},
		Ns:     []int{10000, 20000, 40000},
		Trials: 5,
		Seed:   2014,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable1(cfg)
		if res.Rows[0].Cells[0].Failed != 0 {
			b.Fatal("below-threshold failures")
		}
	}
}

// BenchmarkTable2 regenerates the recurrence-vs-simulation comparison.
func BenchmarkTable2(b *testing.B) {
	cfg := experiments.Table2Config{
		K: 2, R: 4, N: 200000, Cs: []float64{0.70, 0.85}, Rounds: 20, Trials: 3, Seed: 2014,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunTable2(cfg)
	}
}

// BenchmarkTable3 regenerates the r=3 IBLT timing table (insert + recover
// at loads 0.75 and 0.83).
func BenchmarkTable3(b *testing.B) {
	cfg := experiments.IBLTConfig{R: 3, Cells: 1 << 17, Loads: []float64{0.75, 0.83}, Trials: 1, Seed: 2014}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.RunIBLT(cfg)
		if res.Rows[0].PctRecovered < 0.999 {
			b.Fatal("r=3 load 0.75 failed to recover")
		}
	}
}

// BenchmarkTable4 regenerates the r=4 IBLT timing table.
func BenchmarkTable4(b *testing.B) {
	cfg := experiments.IBLTConfig{R: 4, Cells: 1 << 17, Loads: []float64{0.75, 0.83}, Trials: 1, Seed: 2014}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.RunIBLT(cfg)
		if res.Rows[0].PctRecovered < 0.999 {
			b.Fatal("r=4 load 0.75 failed to recover")
		}
	}
}

// BenchmarkTable5 regenerates the subtable subround sweep.
func BenchmarkTable5(b *testing.B) {
	cfg := experiments.Table5Config{
		K: 2, R: 4, Cs: []float64{0.70, 0.75}, Ns: []int{10000, 20000, 40000}, Trials: 5, Seed: 2014,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunTable5(cfg)
	}
}

// BenchmarkTable6 regenerates the subtable recurrence comparison.
func BenchmarkTable6(b *testing.B) {
	cfg := experiments.Table6Config{K: 2, R: 4, N: 200000, C: 0.70, Rounds: 7, Trials: 3, Seed: 2014}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunTable6(cfg)
	}
}

// BenchmarkFigure1 regenerates the near-threshold β traces.
func BenchmarkFigure1(b *testing.B) {
	cfg := experiments.DefaultFigure1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure1(cfg)
		if len(res.Series) != 2 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkRoundsVsNu regenerates the Theorem 5 gap sweep.
func BenchmarkRoundsVsNu(b *testing.B) {
	cfg := experiments.DefaultNuSweep()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.RunNuSweep(cfg)
		if res.FitSlope <= 0 {
			b.Fatal("bad fit")
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationScan compares the frontier-tracking round
// implementation against the GPU-style full rescan on the same graph.
func BenchmarkAblationScan(b *testing.B) {
	g := NewUniformHypergraph(1<<19, 360000, 4, 1) // c ~ 0.69
	for _, bench := range []struct {
		name string
		scan core.ScanPolicy
	}{{"Frontier", core.Frontier}, {"FullScan", core.FullScan}} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := core.Parallel(g, 2, core.Options{Scan: bench.scan})
				if !res.Empty() {
					b.Fatal("peel failed")
				}
			}
		})
	}
}

// BenchmarkAblationSeqVsPar compares sequential queue peeling against the
// round-synchronous parallel peeler (the serial/parallel axis of Tables
// 3-4, on the raw hypergraph rather than through the IBLT).
func BenchmarkAblationSeqVsPar(b *testing.B) {
	g := NewUniformHypergraph(1<<20, 730000, 4, 1) // c ~ 0.70
	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := Peel(g, 2); !res.Empty() {
				b.Fatal("peel failed")
			}
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := DefaultRuntime().Peel(context.Background(), g, 2, PeelOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Empty() {
				b.Fatal("peel failed")
			}
		}
	})
}

// BenchmarkAblationSubtableRounds compares plain parallel peeling with
// the subtable variant on the same partitioned graph — the Appendix B
// trade-off (subrounds ≈ 2× rounds at r=4, not 4×).
func BenchmarkAblationSubtableRounds(b *testing.B) {
	g := NewPartitionedHypergraph(1<<20, 730000, 4, 1)
	b.Run("PlainRounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := DefaultRuntime().Peel(context.Background(), g, 2, PeelOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Empty() {
				b.Fatal("peel failed")
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
		}
	})
	b.Run("Subtables", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := PeelSubtables(g, 2)
			if !res.Empty() {
				b.Fatal("peel failed")
			}
			b.ReportMetric(float64(res.Subrounds), "subrounds")
		}
	})
}

// BenchmarkFrontierCollect compares the two ways a parallel peel round
// can gather its next frontier: a mutex-guarded append to one shared
// slice (the pre-pool implementation) versus per-worker shards merged at
// the round barrier (what internal/core now does on the pool's worker
// IDs). Small sizes model the O(log log n) tail rounds.
func BenchmarkFrontierCollect(b *testing.B) {
	workers := parallel.Workers()
	if workers < 2 {
		workers = 4
	}
	p := parallel.NewPool(workers)
	defer p.Close()
	for _, n := range []int{512, 1 << 16} {
		keep := func(i int) bool { return i%3 == 0 } // ~1/3 survive, like a peel round
		b.Run(fmt.Sprintf("Mutex/n=%d", n), func(b *testing.B) {
			var mu sync.Mutex
			next := make([]uint32, 0, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				next = next[:0]
				p.For(n, 64, func(w, lo, hi int) {
					var local []uint32
					for j := lo; j < hi; j++ {
						if keep(j) {
							local = append(local, uint32(j))
						}
					}
					if len(local) > 0 {
						mu.Lock()
						next = append(next, local...)
						mu.Unlock()
					}
				})
			}
		})
		b.Run(fmt.Sprintf("Sharded/n=%d", n), func(b *testing.B) {
			shards := make([][]uint32, workers)
			next := make([]uint32, 0, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				next = next[:0]
				p.For(n, 64, func(w, lo, hi int) {
					local := shards[w]
					for j := lo; j < hi; j++ {
						if keep(j) {
							local = append(local, uint32(j))
						}
					}
					shards[w] = local
				})
				for w := range shards {
					next = append(next, shards[w]...)
					shards[w] = shards[w][:0]
				}
			}
		})
	}
}

// BenchmarkPeelWorkerCounts runs the full parallel peel below threshold
// at several pool sizes. The pool is hoisted out of the measured loop
// (Options.Workers inside a loop would spin up and tear down a fresh
// pool per peel — the per-call cost core.Options.AcquirePool documents).
func BenchmarkPeelWorkerCounts(b *testing.B) {
	g := NewUniformHypergraph(1<<18, 180000, 4, 1) // c ~ 0.69
	for _, workers := range []int{1, 2, 4} {
		pool, release := core.Options{Workers: workers}.AcquirePool()
		opts := core.Options{Pool: pool}
		b.Run(fmt.Sprintf("W=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := core.Parallel(g, 2, opts); !res.Empty() {
					b.Fatal("peel failed")
				}
			}
		})
		release()
	}
}

// BenchmarkIBLTParallelRecovery isolates the recovery phase at the
// paper's below-threshold load.
func BenchmarkIBLTParallelRecovery(b *testing.B) {
	cells := 1 << 18
	keys := make([]uint64, int(0.75*float64(cells)))
	gen := rng.New(1)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = gen.Uint64()
		}
	}
	master := iblt.New(cells, 3, 1)
	master.InsertAll(keys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := master.Clone()
		b.StartTimer()
		if res := t.DecodeParallel(); !res.Complete {
			b.Fatal("decode failed")
		}
	}
}
